//! Quickstart: train a victim, attack it, watch the filter neutralize
//! the attack, then watch FAdeML defeat the filter.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fademl::setup::{ExperimentSetup, SetupProfile};
use fademl::{InferencePipeline, Scenario, ThreatModel};
use fademl_attacks::{Attack, AttackSurface, Fademl, Fgsm};
use fademl_data::ClassId;
use fademl_filters::FilterSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Train (or reuse) a small VGG-style victim on SynSign-43.
    println!("preparing victim model (SynSign-43)…");
    let prepared = ExperimentSetup::profile(SetupProfile::Smoke).prepare()?;
    println!(
        "victim ready: {:.1}% train accuracy, {} parameters\n",
        prepared.train_accuracy * 100.0,
        prepared.model.param_count()
    );

    // 2. The deployed pipeline smooths every input with LAP(16).
    let filter = FilterSpec::Lap { np: 16 };
    let pipeline = InferencePipeline::new(prepared.model.clone(), filter)?;

    // 3. Scenario 1 of the paper: make a stop sign read as "60 km/h".
    let scenario = Scenario::paper_scenarios()[0];
    let stop_sign = prepared.test.first_of_class(scenario.source)?;
    println!("scenario: {scenario}");

    // 4. Classical FGSM, crafted against the bare DNN (Threat Model I).
    let fgsm = Fgsm::new(0.10)?;
    let mut bare_surface = AttackSurface::new(prepared.model.clone());
    let blind = fgsm.run(&mut bare_surface, &stop_sign, scenario.goal())?;
    let tm1 = pipeline.classify(&blind.adversarial, ThreatModel::I)?;
    let tm3 = pipeline.classify(&blind.adversarial, ThreatModel::III)?;
    println!("\nclassical FGSM:");
    println!(
        "  straight into the DNN buffer (TM-I): {} ({:.1}%)",
        name(tm1.class),
        tm1.confidence * 100.0
    );
    println!(
        "  through the LAP(16) filter (TM-III):  {} ({:.1}%)",
        name(tm3.class),
        tm3.confidence * 100.0
    );

    // 5. FAdeML: the same FGSM, but optimized through filter ∘ DNN.
    let fademl = Fademl::new(Box::new(Fgsm::new(0.10)?), 3, 1.0)?;
    let mut aware_surface = AttackSurface::with_filter(prepared.model.clone(), filter.build()?);
    let aware = fademl.run(&mut aware_surface, &stop_sign, scenario.goal())?;
    let verdict = pipeline.classify(&aware.adversarial, ThreatModel::III)?;
    println!("\nFAdeML[FGSM] (filter-aware):");
    println!(
        "  through the LAP(16) filter (TM-III):  {} ({:.1}%)",
        name(verdict.class),
        verdict.confidence * 100.0
    );
    println!(
        "  noise magnitude: L∞ = {:.3}, L2 = {:.3}",
        aware.noise_linf(),
        aware.noise_l2()
    );
    Ok(())
}

fn name(class: usize) -> String {
    ClassId::new(class)
        .map(|c| c.info().name.to_owned())
        .unwrap_or_else(|_| format!("class {class}"))
}
