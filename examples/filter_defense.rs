//! Filter-defense sweep (a miniature of the paper's Fig. 7): craft one
//! adversarial stop sign per attack, then show what the pipeline
//! reports as each LAP/LAR configuration is deployed.
//!
//! ```text
//! cargo run --release --example filter_defense
//! ```

use fademl::report::{pct, Table};
use fademl::setup::{ExperimentSetup, SetupProfile};
use fademl::{InferencePipeline, Scenario, ThreatModel};
use fademl_attacks::{Attack, AttackSurface, Bim, Fgsm, LbfgsAttack};
use fademl_data::ClassId;
use fademl_filters::FilterSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let prepared = ExperimentSetup::profile(SetupProfile::Smoke).prepare()?;
    let scenario = Scenario::paper_scenarios()[0];
    let stop_sign = prepared.test.first_of_class(scenario.source)?;
    println!(
        "victim: {:.1}% train accuracy",
        prepared.train_accuracy * 100.0
    );
    println!("scenario: {scenario}\n");

    // Craft each classical attack once against the bare DNN.
    let attacks: Vec<(&str, Box<dyn Attack>)> = vec![
        ("L-BFGS", Box::new(LbfgsAttack::new(0.02, 20)?)),
        ("FGSM", Box::new(Fgsm::new(0.10)?)),
        ("BIM", Box::new(Bim::new(0.10, 0.02, 10)?)),
    ];
    let mut crafted = Vec::new();
    for (label, attack) in &attacks {
        let mut surface = AttackSurface::new(prepared.model.clone());
        let adv = attack.run(&mut surface, &stop_sign, scenario.goal())?;
        crafted.push((*label, adv));
    }

    // Evaluate every adversarial image through the paper's full filter
    // sweep: None, LAP(4..64), LAR(1..5).
    let filters = FilterSpec::paper_sweep();
    let mut header = vec!["Attack".to_owned()];
    header.extend(filters.iter().map(|f| f.to_string()));
    let mut table = Table::new(
        "pipeline verdict per deployed filter (Threat Model III)",
        header,
    );
    for (label, adv) in &crafted {
        let mut row = vec![(*label).to_owned()];
        for &filter in &filters {
            let pipeline = InferencePipeline::new(prepared.model.clone(), filter)?;
            let verdict = pipeline.classify(&adv.adversarial, ThreatModel::III)?;
            let marker = if verdict.class == scenario.target.index() {
                " ⚠"
            } else {
                ""
            };
            row.push(format!(
                "{}{} {}",
                verdict.class,
                marker,
                pct(verdict.confidence)
            ));
        }
        table.push_row(row);
    }
    println!("{table}");
    println!(
        "(class {} = \"{}\", the attacker's target; ⚠ marks a surviving attack)",
        scenario.target.index(),
        ClassId::new(scenario.target.index())?.info().name
    );
    Ok(())
}
