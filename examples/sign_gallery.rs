//! Renders a gallery of SynSign-43 images to PPM files so the synthetic
//! dataset (and an adversarial example) can be inspected with any image
//! viewer.
//!
//! ```text
//! cargo run --release --example sign_gallery
//! # images land in ./sign_gallery/
//! ```

use fademl::setup::{ExperimentSetup, SetupProfile};
use fademl::Scenario;
use fademl_attacks::{Attack, AttackSurface, Fgsm};
use fademl_data::{render_sign, save_ppm, ClassId, NoiseModel, RenderJitter};
use fademl_filters::{Filter, Lap};
use fademl_tensor::TensorRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::path::Path::new("sign_gallery");
    std::fs::create_dir_all(out_dir)?;

    // 1. One canonical rendering per class.
    for class in ClassId::all() {
        let img = render_sign(class, 64, &RenderJitter::default())?;
        let name = class.info().name.replace(' ', "_");
        save_ppm(
            &img,
            out_dir.join(format!("class_{:02}_{}.ppm", class.index(), name)),
        )?;
    }

    // 2. The acquisition pipeline stages for one stop sign.
    let mut rng = TensorRng::seed_from_u64(42);
    let clean = render_sign(ClassId::STOP, 64, &RenderJitter::default())?;
    let noisy = NoiseModel::sensor().apply(&clean, &mut rng);
    let filtered = Lap::new(8)?.apply(&noisy)?;
    save_ppm(&clean, out_dir.join("stage_1_rendered.ppm"))?;
    save_ppm(&noisy, out_dir.join("stage_2_acquired_noisy.ppm"))?;
    save_ppm(&filtered, out_dir.join("stage_3_lap8_filtered.ppm"))?;

    // 3. An adversarial stop sign and its (amplified) noise.
    let prepared = ExperimentSetup::profile(SetupProfile::Smoke).prepare()?;
    let scenario = Scenario::paper_scenarios()[0];
    let source = prepared.test.first_of_class(scenario.source)?;
    let mut surface = AttackSurface::new(prepared.model.clone());
    let adv = Fgsm::new(0.08)?.run(&mut surface, &source, scenario.goal())?;
    save_ppm(&source, out_dir.join("adv_1_original.ppm"))?;
    save_ppm(&adv.adversarial, out_dir.join("adv_2_adversarial.ppm"))?;
    // Noise is in [−ε, ε]; shift and stretch it into the visible range.
    let noise_vis = adv.noise.scale(4.0).add_scalar(0.5).clamp(0.0, 1.0);
    save_ppm(&noise_vis, out_dir.join("adv_3_noise_x4.ppm"))?;

    println!("wrote {} PPM files to {}", 43 + 6, out_dir.display());
    Ok(())
}
