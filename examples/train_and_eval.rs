//! Train a VGG-style classifier on SynSign-43 from scratch and report
//! the metrics the paper uses (top-1 / top-5 accuracy, per-class
//! confidence), end to end.
//!
//! ```text
//! cargo run --release --example train_and_eval
//! ```

use fademl_data::{ClassId, DatasetConfig, SignDataset, CLASS_COUNT};
use fademl_nn::metrics::{predict_top_k, top1_accuracy, top5_accuracy};
use fademl_nn::vgg::VggConfig;
use fademl_nn::{OptimizerKind, TrainConfig, Trainer};
use fademl_tensor::TensorRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Generate a balanced synthetic traffic-sign dataset.
    let config = DatasetConfig {
        samples_per_class: 10,
        image_size: 20,
        seed: 3,
        ..DatasetConfig::default()
    };
    let dataset = SignDataset::generate(&config)?;
    let split = dataset.split(0.25)?;
    println!(
        "SynSign-43: {} train / {} test images of {}x{} px, {} classes",
        split.train.len(),
        split.test.len(),
        config.image_size,
        config.image_size,
        CLASS_COUNT
    );

    // Build and train the victim.
    let mut rng = TensorRng::seed_from_u64(3);
    let vgg = VggConfig::tiny(3, config.image_size, CLASS_COUNT);
    let mut model = vgg.build(&mut rng)?;
    println!("\nmodel architecture:\n{}\n", model.summary());

    let mut trainer = Trainer::new(TrainConfig {
        epochs: 10,
        batch_size: 32,
        optimizer: OptimizerKind::Adam { lr: 2e-3 },
        seed: 3,
        lr_decay: 0.95,
        verbose: true,
        patience: Some(4),
        divergence: None,
        compute_threads: 0,
    });
    trainer.fit(&mut model, split.train.images(), split.train.labels())?;

    // Evaluate with the paper's metrics.
    let top1 = top1_accuracy(&model, split.test.images(), split.test.labels())?;
    let top5 = top5_accuracy(&model, split.test.images(), split.test.labels())?;
    println!("\ntest top-1 accuracy: {:.1}%", top1 * 100.0);
    println!("test top-5 accuracy: {:.1}%", top5 * 100.0);

    // Show the top-5 ranking for one stop sign, paper-figure style.
    let stop = split.test.first_of_class(ClassId::STOP)?;
    let prediction = predict_top_k(&model, &stop.unsqueeze_batch(), 5)?.remove(0);
    println!("\ntop-5 prediction for a held-out stop sign:");
    for (class, prob) in prediction.top_classes.iter().zip(&prediction.top_probs) {
        println!(
            "  {:>5.1}%  {}",
            prob * 100.0,
            ClassId::new(*class)?.info().name
        );
    }
    Ok(())
}
