//! Durability drill for the checkpoint/resume subsystem:
//!
//! 1. trains a small victim with periodic checkpointing, killing the
//!    run at a checkpoint boundary (the crash the subsystem is for);
//! 2. resumes from the newest intact generation with a *fresh* model
//!    and verifies the final weights are byte-identical to an
//!    uninterrupted reference run with the same seed;
//! 3. corrupts the newest checkpoint on disk and shows recovery
//!    falling back to the previous intact generation;
//! 4. trains with an absurd learning rate under a [`DivergenceGuard`]
//!    and shows the rollback-with-backoff path rescuing the run.
//!
//! ```text
//! cargo run --release --example checkpoint_demo
//! ```

use std::fs;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

use fademl_data::{DatasetConfig, NoiseModel, SignDataset, CLASS_COUNT};
use fademl_nn::vgg::VggConfig;
use fademl_nn::{
    CheckpointConfig, CheckpointStore, DivergenceGuard, OptimizerKind, Sequential, TrainConfig,
    TrainSignal, Trainer,
};
use fademl_tensor::{Tensor, TensorRng};

const EPOCHS: usize = 8;
const KILL_AFTER_EPOCH: usize = 4;
const CHECKPOINT_EVERY: usize = 2;

fn demo_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fademl_ckpt_demo_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn victim() -> Result<Sequential, Box<dyn std::error::Error>> {
    let mut rng = TensorRng::seed_from_u64(7);
    Ok(VggConfig::tiny(3, 16, CLASS_COUNT).build(&mut rng)?)
}

fn weights(model: &Sequential) -> Vec<Tensor> {
    model.params().iter().map(|p| p.value.clone()).collect()
}

fn config() -> TrainConfig {
    TrainConfig {
        epochs: EPOCHS,
        batch_size: 32,
        optimizer: OptimizerKind::Adam { lr: 3e-3 },
        seed: 7,
        lr_decay: 0.95,
        verbose: false,
        patience: None,
        divergence: None,
        compute_threads: 0,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = SignDataset::generate(&DatasetConfig {
        samples_per_class: 6,
        image_size: 16,
        seed: 7,
        noise: NoiseModel::sensor(),
        blur_prob: 0.5,
    })?;
    println!(
        "dataset: {} images, {} classes, {}x{} px",
        dataset.len(),
        CLASS_COUNT,
        dataset.image_size(),
        dataset.image_size()
    );

    // ------------------------------------------------------------------
    // Reference: an uninterrupted durable run.
    // ------------------------------------------------------------------
    let dir_ref = demo_dir("reference");
    let mut model_ref = victim()?;
    let report = Trainer::new(config()).fit_durable(
        &mut model_ref,
        dataset.images(),
        dataset.labels(),
        &CheckpointConfig::new(&dir_ref)
            .every(CHECKPOINT_EVERY)
            .retain(3),
    )?;
    println!(
        "\n[reference] {} epochs, final accuracy {:.1}%, {} checkpoints written",
        report.history.epochs.len(),
        report.history.final_accuracy() * 100.0,
        report.checkpoints_written
    );

    // ------------------------------------------------------------------
    // Crash: kill the run right after the epoch-4 checkpoint lands.
    // ------------------------------------------------------------------
    let dir = demo_dir("crashed");
    let ckpt = CheckpointConfig::new(&dir)
        .every(CHECKPOINT_EVERY)
        .retain(3);
    let mut model = victim()?;
    let halted = Trainer::new(config()).fit_durable_with(
        &mut model,
        dataset.images(),
        dataset.labels(),
        &ckpt,
        |epoch, stats| {
            println!(
                "  epoch {epoch}: loss {:.4}, accuracy {:.1}%",
                stats.loss,
                stats.train_accuracy * 100.0
            );
            if epoch == KILL_AFTER_EPOCH {
                println!("  *** simulated crash after the epoch-{epoch} checkpoint ***");
                TrainSignal::Halt
            } else {
                TrainSignal::Continue
            }
        },
    )?;
    println!(
        "[crashed]   completed = {}, epochs on record = {}",
        halted.completed,
        halted.history.epochs.len()
    );

    // ------------------------------------------------------------------
    // Resume: a fresh process (fresh model) picks up from disk.
    // ------------------------------------------------------------------
    let mut model = victim()?;
    let resumed = Trainer::new(config()).fit_durable(
        &mut model,
        dataset.images(),
        dataset.labels(),
        &ckpt,
    )?;
    println!(
        "[resumed]   resumed from epoch {:?}, completed = {}, final accuracy {:.1}%",
        resumed.resumed_from_epoch,
        resumed.completed,
        resumed.history.final_accuracy() * 100.0
    );
    let identical = weights(&model) == weights(&model_ref);
    println!("[verify]    resumed weights byte-identical to reference: {identical}");
    assert!(identical, "crash + resume must reproduce the reference run");

    // ------------------------------------------------------------------
    // Corruption: rot one byte of the newest generation on disk.
    // ------------------------------------------------------------------
    let store = CheckpointStore::open(&dir, 3)?;
    let generations = store.generations()?;
    println!("\ngenerations on disk: {:?}", {
        let gens: Vec<u64> = generations.iter().map(|(g, _)| *g).collect();
        gens
    });
    let (newest_gen, newest_path) = generations.last().expect("at least one generation");
    let mut file = fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(newest_path)?;
    file.seek(SeekFrom::Start(100))?;
    let mut byte = [0u8; 1];
    file.read_exact(&mut byte)?;
    byte[0] ^= 0x40;
    file.seek(SeekFrom::Start(100))?;
    file.write_all(&byte)?;
    file.sync_all()?;
    drop(file);
    println!("flipped one bit of generation {newest_gen} at byte offset 100");
    match CheckpointStore::load(newest_path) {
        Err(e) => println!("loading the rotten generation: {e}"),
        Ok(_) => println!("BUG: corruption was not detected"),
    }
    let (recovered_gen, _) = store
        .latest_intact()?
        .expect("an older intact generation survives");
    println!("recovery falls back to intact generation {recovered_gen}");
    assert!(recovered_gen < *newest_gen);

    // ------------------------------------------------------------------
    // Divergence: an absurd learning rate under the guard.
    // ------------------------------------------------------------------
    let dir_div = demo_dir("divergence");
    let mut wild = config();
    wild.epochs = 6;
    wild.optimizer = OptimizerKind::SgdMomentum { lr: 1e4 };
    wild.divergence = Some(DivergenceGuard {
        spike_factor: 4.0,
        max_loss: 10.0,
        lr_backoff: 1e-3,
        max_rollbacks: 5,
    });
    let mut model = victim()?;
    match Trainer::new(wild).fit_durable(
        &mut model,
        dataset.images(),
        dataset.labels(),
        &CheckpointConfig::new(&dir_div).every(1).retain(2),
    ) {
        Ok(report) => println!(
            "\n[divergence] survived with {} rollback(s), final loss {:.4}",
            report.rollbacks,
            report.history.epochs.last().map_or(f32::NAN, |e| e.loss)
        ),
        Err(e) => println!("\n[divergence] rollback budget exhausted: {e}"),
    }

    let _ = fs::remove_dir_all(&dir_ref);
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&dir_div);
    println!("\ncheckpoint drill OK");
    Ok(())
}
