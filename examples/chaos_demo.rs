//! Chaos drill for the fault-tolerant serving engine: concurrent
//! clients submit mixed traffic (with per-request deadlines and some
//! deliberately malformed images) while an armed [`FaultPlan`] panics a
//! worker, kills another mid-batch, delays a batch and stalls the
//! batcher. The demo asserts the engine's core invariant — every
//! accepted request resolves with a verdict or a typed error — and
//! prints the resulting fault/degradation metrics.
//!
//! ```text
//! cargo run --release --features faults --example chaos_demo
//! ```

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use fademl::setup::{ExperimentSetup, SetupProfile};
use fademl::{InferencePipeline, ThreatModel};
use fademl_filters::FilterSpec;
use fademl_serve::{FaultPlan, InferenceServer, ServeError, ServerConfig};

const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 24;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let prepared = ExperimentSetup::profile(SetupProfile::Smoke).prepare()?;
    let pipeline = InferencePipeline::new(prepared.model.clone(), FilterSpec::Lap { np: 8 })?;

    let mut traffic = Vec::new();
    for index in 0..12 {
        let (clean, _) = prepared.test.sample(index)?;
        traffic.push(clean);
    }
    let traffic = Arc::new(traffic);

    let config = ServerConfig {
        queue_capacity: 128,
        max_batch_size: 4,
        linger_us: 2_000,
        workers: 2,
        degrade_after_failures: 2,
        probe_every: 2,
        ..ServerConfig::default()
    };
    let plan = FaultPlan::new()
        .panic_on_batch(2)
        .panic_on_batch(3) // consecutive failures open the breaker
        .kill_worker_on_batch(6)
        .delay_batch(9, Duration::from_millis(40))
        .stall_dequeue(13, Duration::from_millis(60));
    println!("chaos drill with {config:?}");
    println!(
        "armed faults: panic@batch2, panic@batch3, kill@batch6, delay@batch9, stall@dequeue13\n"
    );
    let server = Arc::new(InferenceServer::start_with_faults(pipeline, config, plan)?);

    thread::scope(|scope| {
        for client in 0..CLIENTS {
            let server = Arc::clone(&server);
            let traffic = Arc::clone(&traffic);
            scope.spawn(move || {
                let mut verdicts = 0usize;
                let mut errors = 0usize;
                let mut hung = 0usize;
                for i in 0..REQUESTS_PER_CLIENT {
                    let mut image = traffic[(client + i) % traffic.len()].clone();
                    // Every 12th request is adversarially malformed.
                    if i % 12 == 5 {
                        image.as_mut_slice()[0] = f32::NAN;
                    }
                    let threat = ThreatModel::ALL[i % ThreatModel::ALL.len()];
                    // A mix of generous and deliberately tight
                    // deadlines; the tight ones expire behind the
                    // injected delays/stalls (or plain linger).
                    let deadline = match i % 8 {
                        0 => Some(Duration::from_millis(250)),
                        4 => Some(Duration::from_micros(500)),
                        _ => None,
                    };
                    match server.submit_with_deadline(image, threat, deadline) {
                        Ok(handle) => match handle.wait_timeout(Duration::from_secs(30)) {
                            Some(Ok(_)) => verdicts += 1,
                            Some(Err(_)) => errors += 1,
                            None => hung += 1, // invariant violation
                        },
                        Err(ServeError::InvalidInput { .. })
                        | Err(ServeError::Overloaded { .. }) => errors += 1,
                        Err(error) => {
                            println!("client {client}: unexpected submit error: {error}");
                            errors += 1;
                        }
                    }
                }
                println!(
                    "client {client}: {verdicts} verdicts, {errors} typed errors, {hung} hangs"
                );
                assert_eq!(hung, 0, "client {client} observed a hung handle");
            });
        }
    });

    let server = Arc::into_inner(server).expect("all clients joined");
    let report = server.shutdown();
    let resolved = report.requests_completed + report.requests_failed;
    println!(
        "\ninvariant: {resolved}/{} accepted requests resolved (+{} rejected at admission)",
        report.requests_submitted,
        report.requests_rejected + report.requests_invalid,
    );
    assert_eq!(resolved, report.requests_submitted, "no request may hang");
    println!("\n{}", report.render());
    println!("json:\n{}", report.to_json());
    Ok(())
}
