//! Drives the dynamic-batching serving engine with mixed traffic:
//! clean test images and BIM adversarial examples, spread across all
//! three threat models, submitted from concurrent client threads. Ends
//! with the server's metrics report — batch-size histogram, queue
//! rejections and latency percentiles.
//!
//! ```text
//! cargo run --release --example serve_demo
//! ```

use std::sync::Arc;
use std::thread;

use fademl::setup::{ExperimentSetup, SetupProfile};
use fademl::{InferencePipeline, ThreatModel};
use fademl_attacks::{Attack, AttackGoal, AttackSurface, Bim};
use fademl_filters::FilterSpec;
use fademl_serve::{InferenceServer, ServeError, ServerConfig};

const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 24;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let prepared = ExperimentSetup::profile(SetupProfile::Smoke).prepare()?;
    let pipeline = InferencePipeline::new(prepared.model.clone(), FilterSpec::Lap { np: 8 })?;

    // Pre-craft a small pool of adversarial examples so client threads
    // only submit — attack crafting is not part of the serving path.
    let attack = Bim::new(0.12, 0.02, 8)?;
    let mut surface = AttackSurface::new(prepared.model.clone());
    let mut traffic = Vec::new();
    for index in 0..8 {
        let (clean, label) = prepared.test.sample(index)?;
        let goal = AttackGoal::Untargeted { source: label };
        let crafted = attack.run(&mut surface, &clean, goal)?;
        traffic.push(clean);
        traffic.push(crafted.adversarial);
    }
    let traffic = Arc::new(traffic);

    let config = ServerConfig {
        queue_capacity: 64,
        max_batch_size: 8,
        linger_us: 2_000,
        workers: 2,
        ..ServerConfig::default()
    };
    println!("serving with {config:?}\n");
    let server = Arc::new(InferenceServer::start(pipeline, config)?);

    thread::scope(|scope| {
        for client in 0..CLIENTS {
            let server = Arc::clone(&server);
            let traffic = Arc::clone(&traffic);
            scope.spawn(move || {
                let mut served = 0usize;
                let mut shed = 0usize;
                for i in 0..REQUESTS_PER_CLIENT {
                    let image = traffic[(client + i) % traffic.len()].clone();
                    let threat = ThreatModel::ALL[i % ThreatModel::ALL.len()];
                    match server.submit(image, threat) {
                        Ok(handle) => match handle.wait() {
                            Ok(_) => served += 1,
                            Err(error) => println!("client {client}: {error}"),
                        },
                        Err(ServeError::Overloaded { .. }) => shed = shed.saturating_add(1),
                        Err(error) => println!("client {client}: submit failed: {error}"),
                    }
                }
                println!("client {client}: {served} served, {shed} shed");
            });
        }
    });

    let server = Arc::into_inner(server).expect("all clients joined");
    let report = server.shutdown();
    println!("\n{}", report.render());
    println!("json:\n{}", report.to_json());
    Ok(())
}
