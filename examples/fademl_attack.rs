//! The paper's headline comparison: a blind attack dies at the filter,
//! the FAdeML filter-aware attack survives it — on every scenario.
//!
//! ```text
//! cargo run --release --example fademl_attack
//! ```

use fademl::report::Table;
use fademl::setup::{ExperimentSetup, SetupProfile};
use fademl::{InferencePipeline, Scenario, ThreatModel};
use fademl_attacks::{Attack, AttackSurface, Bim, Fademl, ImperceptibilityReport};
use fademl_filters::FilterSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let prepared = ExperimentSetup::profile(SetupProfile::Smoke).prepare()?;
    let filter = FilterSpec::Lap { np: 16 };
    let pipeline = InferencePipeline::new(prepared.model.clone(), filter)?;
    println!(
        "victim: {:.1}% train accuracy; deployed filter: {filter}\n",
        prepared.train_accuracy * 100.0
    );

    let mut table = Table::new(
        "blind BIM vs FAdeML[BIM] through the deployed filter (TM-III)",
        vec![
            "Scenario".into(),
            "Blind verdict".into(),
            "FAdeML verdict".into(),
            "FAdeML success".into(),
            "PSNR (dB)".into(),
        ],
    );

    for scenario in Scenario::paper_scenarios() {
        let source = prepared.test.first_of_class(scenario.source)?;

        // Blind: crafted against the bare DNN.
        let bim = Bim::new(0.12, 0.02, 12)?;
        let mut bare = AttackSurface::new(prepared.model.clone());
        let blind = bim.run(&mut bare, &source, scenario.goal())?;
        let blind_verdict = pipeline.classify(&blind.adversarial, ThreatModel::III)?;

        // Filter-aware: the same BIM wrapped in FAdeML, crafted against
        // filter ∘ DNN.
        let fademl = Fademl::new(Box::new(Bim::new(0.12, 0.02, 12)?), 3, 1.0)?;
        let mut aware = AttackSurface::with_filter(prepared.model.clone(), filter.build()?);
        let adv = fademl.run(&mut aware, &source, scenario.goal())?;
        let verdict = pipeline.classify(&adv.adversarial, ThreatModel::III)?;
        let report = ImperceptibilityReport::between(&source, &adv.adversarial)?;

        table.push_row(vec![
            scenario.label(),
            format!(
                "{} ({:.0}%)",
                blind_verdict.class,
                blind_verdict.confidence * 100.0
            ),
            format!("{} ({:.0}%)", verdict.class, verdict.confidence * 100.0),
            if verdict.class == scenario.target.index() {
                "yes".into()
            } else {
                "no".into()
            },
            format!("{:.1}", report.psnr_db),
        ]);
    }
    println!("{table}");
    Ok(())
}
