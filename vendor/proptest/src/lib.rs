//! Offline drop-in for the subset of `proptest` this workspace uses.
//!
//! A [`proptest!`] block runs each test body for [`ProptestConfig::cases`]
//! deterministic pseudo-random cases. There is **no shrinking**: a
//! failing case panics immediately with the case index baked into the
//! assertion message (the stream is deterministic per test name, so a
//! failure always reproduces).
//!
//! Supported strategy expressions: integer and float ranges
//! (`0u64..500`, `-2.0f32..2.0`), [`collection::vec`] with a fixed or
//! ranged length, and [`Just`].

use std::ops::Range;

pub mod collection;

/// Everything a `proptest!` test needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; tests here exercise training
        // loops and convolutions, so a leaner default keeps `cargo test`
        // fast while still sweeping the input space.
        ProptestConfig { cases: 32 }
    }
}

/// Deterministic per-case random source (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for case number `case` of test `test_name`, keyed so
    /// every test gets an independent deterministic stream.
    pub fn for_case(module: &str, test_name: &str, case: u32) -> Self {
        // FNV-1a over the identifying strings, mixed with the case index.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in module.bytes().chain(test_name.bytes()) {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: hash ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Strategy producing a fixed value every case.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_strategy {
    ($($t:ty => $bits:expr, $scale:expr),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let unit = (rng.next_u64() >> $bits) as $t * $scale;
                let v = self.start + unit * (self.end - self.start);
                if v >= self.end {
                    self.end.next_down().max(self.start)
                } else {
                    v
                }
            }
        }
    )*};
}

impl_float_strategy!(
    f32 => 40, 1.0 / (1u64 << 24) as f32,
    f64 => 11, 1.0 / (1u64 << 53) as f64
);

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Runs each `#[test] fn name(arg in strategy, …) { … }` body for the
/// configured number of random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($config) $($rest)*);
    };
    (@expand ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            for proptest_case in 0..config.cases {
                let mut proptest_rng = $crate::TestRng::for_case(
                    module_path!(),
                    stringify!($name),
                    proptest_case,
                );
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut proptest_rng);)+
                // Closure so `prop_assume!` can abandon a case early
                // with `return`.
                #[allow(clippy::redundant_closure_call)]
                (|| {
                    let _ = &proptest_case; // case index for assertion messages
                    $body
                })();
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

/// Abandons the current case when its inputs don't satisfy a
/// precondition (the case simply doesn't count — no replacement case is
/// drawn, unlike the real crate).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("m", "t", 0);
        for _ in 0..1000 {
            let i = Strategy::generate(&(3usize..17), &mut rng);
            assert!((3..17).contains(&i));
            let f = Strategy::generate(&(-2.0f32..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn deterministic_per_case() {
        let a = Strategy::generate(&(0u64..1000), &mut TestRng::for_case("m", "x", 4));
        let b = Strategy::generate(&(0u64..1000), &mut TestRng::for_case("m", "x", 4));
        assert_eq!(a, b);
        let c = Strategy::generate(&(0u64..1000), &mut TestRng::for_case("m", "x", 5));
        // Different cases draw different values (with overwhelming odds
        // for this seed layout; pinned by determinism above).
        assert_ne!(a, c);
    }

    #[test]
    fn cases_vary_across_index() {
        let distinct: std::collections::HashSet<u64> = (0..32)
            .map(|case| {
                Strategy::generate(&(0u64..u64::MAX), &mut TestRng::for_case("m", "y", case))
            })
            .collect();
        assert!(distinct.len() > 30);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_end_to_end(a in 0usize..50, b in 1usize..10) {
            prop_assume!(a >= b);
            prop_assert!(a / b <= a);
            prop_assert_eq!(a / b * b + a % b, a);
        }
    }

    proptest! {
        #[test]
        fn default_config_used(x in 0.0f32..1.0) {
            prop_assert!((0.0..1.0).contains(&x));
        }
    }
}
