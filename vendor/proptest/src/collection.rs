//! `Vec` strategies (`proptest::collection::vec`).

use std::ops::Range;

use crate::{Strategy, TestRng};

/// Length specification for [`vec`]: a fixed size or a half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        SizeRange {
            min: len,
            max_exclusive: len + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty vec length range");
        SizeRange {
            min: range.start,
            max_exclusive: range.end,
        }
    }
}

/// Strategy producing vectors whose elements come from `element` and
/// whose length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_exclusive - self.size.min) as u64;
        let len = self.size.min + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_length() {
        let mut rng = TestRng::for_case("m", "fixed", 0);
        let v = vec(0u32..10, 5).generate(&mut rng);
        assert_eq!(v.len(), 5);
        assert!(v.iter().all(|x| *x < 10));
    }

    #[test]
    fn ranged_length() {
        let strategy = vec(-1.0f32..1.0, 2..9);
        for case in 0..50 {
            let mut rng = TestRng::for_case("m", "ranged", case);
            let v = strategy.generate(&mut rng);
            assert!((2..9).contains(&v.len()), "len {}", v.len());
            assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }
    }
}
