//! Offline drop-in for the subset of `crossbeam` 0.8 this workspace
//! uses: MPMC channels ([`channel`]) and scoped threads ([`thread`]).

pub mod channel;
pub mod thread;
