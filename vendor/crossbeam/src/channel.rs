//! MPMC channels with the `crossbeam-channel` API subset used by this
//! workspace: [`bounded`] / [`unbounded`] constructors, cloneable
//! [`Sender`] / [`Receiver`] ends, blocking and non-blocking operations,
//! and timed receives.
//!
//! Built on a `Mutex<VecDeque>` plus two condvars (not lock-free like
//! the real crate, but the serving hot path holds the lock only for a
//! push/pop, which is plenty for this workspace's traffic).

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Error of [`Sender::send`]: all receivers are gone; carries the value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error of [`Sender::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is bounded and at capacity; carries the value.
    Full(T),
    /// All receivers are gone; carries the value.
    Disconnected(T),
}

/// Error of [`Receiver::recv`]: the channel is empty and all senders are
/// gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error of [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

/// Error of [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty, disconnected channel")
    }
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    capacity: Option<usize>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Inner<T> {
    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The sending half of a channel. Cloneable (multi-producer).
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// The receiving half of a channel. Cloneable (multi-consumer).
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

/// Creates a bounded channel holding at most `cap` messages.
///
/// `send` blocks when full; `try_send` returns [`TrySendError::Full`].
/// A capacity of zero is treated as capacity one (the real crate's
/// zero-capacity rendezvous semantics are not needed here).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(cap.max(1)))
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        capacity,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            inner: inner.clone(),
        },
        Receiver { inner },
    )
}

impl<T> Sender<T> {
    /// Sends `msg`, blocking while the channel is full.
    ///
    /// # Errors
    ///
    /// Returns [`SendError`] carrying the message when every receiver
    /// has been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut state = self.inner.lock();
        loop {
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            let full = self
                .inner
                .capacity
                .is_some_and(|cap| state.queue.len() >= cap);
            if !full {
                state.queue.push_back(msg);
                drop(state);
                self.inner.not_empty.notify_one();
                return Ok(());
            }
            state = self
                .inner
                .not_full
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Sends `msg` without blocking.
    ///
    /// # Errors
    ///
    /// [`TrySendError::Full`] when a bounded channel is at capacity,
    /// [`TrySendError::Disconnected`] when every receiver is gone; both
    /// carry the message back.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut state = self.inner.lock();
        if state.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if self
            .inner
            .capacity
            .is_some_and(|cap| state.queue.len() >= cap)
        {
            return Err(TrySendError::Full(msg));
        }
        state.queue.push_back(msg);
        drop(state);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// Whether the channel currently holds no messages.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Receives a message, blocking while the channel is empty.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError`] when the channel is empty and every sender
    /// has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.inner.lock();
        loop {
            if let Some(msg) = state.queue.pop_front() {
                drop(state);
                self.inner.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self
                .inner
                .not_empty
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Receives without blocking.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] when nothing is queued,
    /// [`TryRecvError::Disconnected`] when additionally every sender is
    /// gone.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.inner.lock();
        if let Some(msg) = state.queue.pop_front() {
            drop(state);
            self.inner.not_full.notify_one();
            return Ok(msg);
        }
        if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Receives, blocking at most `timeout`.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] when the wait elapses,
    /// [`RecvTimeoutError::Disconnected`] when the channel is empty and
    /// every sender is gone.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.inner.lock();
        loop {
            if let Some(msg) = state.queue.pop_front() {
                drop(state);
                self.inner.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, wait) = self
                .inner
                .not_empty
                .wait_timeout(state, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            state = guard;
            if wait.timed_out() && state.queue.is_empty() {
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// Whether the channel currently holds no messages.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.lock().senders += 1;
        Sender {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.inner.lock().receivers += 1;
        Receiver {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.inner.lock();
        state.senders -= 1;
        let last = state.senders == 0;
        drop(state);
        if last {
            // Wake receivers blocked on an empty queue so they observe
            // the disconnect.
            self.inner.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.inner.lock();
        state.receivers -= 1;
        let last = state.receivers == 0;
        drop(state);
        if last {
            // Wake senders blocked on a full queue so they observe the
            // disconnect.
            self.inner.not_full.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sender").finish_non_exhaustive()
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Receiver").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order() {
        let (tx, rx) = unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.len(), 5);
        for i in 0..5 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn bounded_try_send_reports_full() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        rx.recv().unwrap();
        tx.try_send(3).unwrap();
    }

    #[test]
    fn disconnect_surfaces_on_both_ends() {
        let (tx, rx) = bounded::<i32>(1);
        drop(rx);
        assert!(matches!(tx.send(9), Err(SendError(9))));
        let (tx, rx) = bounded::<i32>(1);
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 1); // drains the buffer first
        assert!(rx.recv().is_err());
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Disconnected)));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = bounded::<i32>(1);
        let err = rx.recv_timeout(Duration::from_millis(20)).unwrap_err();
        assert_eq!(err, RecvTimeoutError::Timeout);
    }

    #[test]
    fn blocking_send_unblocks_on_recv() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = thread::spawn(move || tx.send(2).unwrap());
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        t.join().unwrap();
    }

    #[test]
    fn mpmc_all_messages_arrive_once() {
        let (tx, rx) = bounded(4);
        let mut senders = Vec::new();
        for part in 0..4 {
            let tx = tx.clone();
            senders.push(thread::spawn(move || {
                for i in 0..25 {
                    tx.send(part * 25 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut receivers = Vec::new();
        for _ in 0..3 {
            let rx = rx.clone();
            receivers.push(thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            }));
        }
        drop(rx);
        let mut all: Vec<i32> = receivers
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        for h in senders {
            h.join().unwrap();
        }
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }
}
