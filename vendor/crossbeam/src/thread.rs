//! Scoped threads with `crossbeam::thread::scope` semantics: child
//! panics are collected and surfaced as an `Err` from [`scope`] instead
//! of unwinding through the caller.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

/// Result type of [`scope`]: `Err` carries the first child panic payload.
pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

/// Handle passed to the scope closure; spawns threads tied to the scope.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
    // Owned (not borrowed) so the handle can be cloned into spawned
    // closures without tying a local's borrow to the higher-ranked
    // `'scope` lifetime.
    panics: Arc<Mutex<Vec<Box<dyn Any + Send + 'static>>>>,
}

impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        Scope {
            inner: self.inner,
            panics: Arc::clone(&self.panics),
        }
    }
}

/// Handle to a thread spawned with [`Scope::spawn`].
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, Option<T>>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the thread to finish; `Err` means it panicked.
    pub fn join(self) -> Result<T> {
        match self.inner.join() {
            Ok(Some(v)) => Ok(v),
            // The closure panicked; the payload was already recorded by
            // the scope, report a placeholder here.
            Ok(None) => Err(Box::new("scoped thread panicked")),
            Err(payload) => Err(payload),
        }
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives a scope handle so
    /// nested spawning is possible (crossbeam's signature).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let nested = self.clone();
        let handle =
            self.inner.spawn(
                move || match catch_unwind(AssertUnwindSafe(|| f(&nested))) {
                    Ok(v) => Some(v),
                    Err(payload) => {
                        nested
                            .panics
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .push(payload);
                        None
                    }
                },
            );
        ScopedJoinHandle { inner: handle }
    }
}

/// Runs `f` with a scope handle; all spawned threads are joined before
/// this returns. Returns `Err` with the first panic payload if any child
/// panicked (the closure's own result is discarded in that case).
pub fn scope<'env, F, R>(f: F) -> Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    let panics = Arc::new(Mutex::new(Vec::new()));
    let result = std::thread::scope(|s| {
        let wrapper = Scope {
            inner: s,
            panics: Arc::clone(&panics),
        };
        f(&wrapper)
    });
    let mut collected = std::mem::take(&mut *panics.lock().unwrap_or_else(|e| e.into_inner()));
    if collected.is_empty() {
        Ok(result)
    } else {
        Err(collected.swap_remove(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn joins_all_children() {
        let counter = AtomicUsize::new(0);
        let sum = scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
            21
        })
        .unwrap();
        assert_eq!(sum, 21);
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn child_panic_becomes_err() {
        let outcome = scope(|s| {
            s.spawn(|_| panic!("child failure"));
        });
        assert!(outcome.is_err());
    }

    #[test]
    fn join_handle_returns_value() {
        scope(|s| {
            let h = s.spawn(|_| 5usize);
            assert_eq!(h.join().unwrap(), 5);
        })
        .unwrap();
    }

    #[test]
    fn nested_spawn_through_handle() {
        let hits = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| {
                    hits.fetch_add(1, Ordering::SeqCst);
                });
            });
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }
}
