//! Offline drop-in for the subset of `rand` 0.10 this workspace uses.
//!
//! [`rngs::StdRng`] is a xoshiro256\*\* generator whose 256-bit state is
//! expanded from a 64-bit seed with SplitMix64 — the standard seeding
//! recipe from the xoshiro authors. It is *not* bit-compatible with the
//! real `rand::rngs::StdRng` (ChaCha12), but the workspace only relies
//! on determinism-given-seed, uniformity and stream independence, all of
//! which hold.
//!
//! Provided surface:
//! - `StdRng::seed_from_u64` via [`SeedableRng`]
//! - `rng.random::<u64>()` / `rng.random::<f64>()` … via [`RngExt::random`]
//! - `rng.random_range(lo..hi)` and `lo..=hi` for the integer and float
//!   types used in the workspace via [`RngExt::random_range`]

use std::ops::{Range, RangeInclusive};

/// Object-safe core of a random generator: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled directly from raw bits (for `rng.random()`).
pub trait FromRandomBits {
    /// Draws one value from the generator.
    fn from_bits(rng: &mut dyn RngCore) -> Self;
}

impl FromRandomBits for u64 {
    fn from_bits(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl FromRandomBits for u32 {
    fn from_bits(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl FromRandomBits for bool {
    fn from_bits(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRandomBits for f64 {
    fn from_bits(rng: &mut dyn RngCore) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl FromRandomBits for f32 {
    fn from_bits(rng: &mut dyn RngCore) -> Self {
        unit_f32(rng.next_u64())
    }
}

/// `u64` bits → uniform `f64` in `[0, 1)` (53 mantissa bits).
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// `u64` bits → uniform `f32` in `[0, 1)` (24 mantissa bits).
fn unit_f32(bits: u64) -> f32 {
    (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

/// A range that can be sampled uniformly (argument of `random_range`).
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from(self, rng: &mut dyn RngCore) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty => $unit:ident),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = $unit(rng.next_u64());
                let v = self.start + u * (self.end - self.start);
                // Floating rounding can land exactly on the excluded upper
                // bound; nudge back inside the half-open interval.
                if v >= self.end {
                    self.end.next_down().max(self.start)
                } else {
                    v
                }
            }
        }
    )*};
}

impl_float_range!(f32 => unit_f32, f64 => unit_f64);

/// Convenience sampling methods, mirroring `rand::Rng`/`RngExt`.
pub trait RngExt: RngCore {
    /// Draws one value of an inferred type.
    fn random<T: FromRandomBits>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_bits(self)
    }

    /// Draws one value uniformly from `range`.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> RngExt for T {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256\*\* — fast, high-quality, 256-bit state.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// SplitMix64 step, used to expand the seed into the full state.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// The generator's full 256-bit internal state, for exact
        /// save/restore across process boundaries (checkpointing).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a previously captured state. The
        /// restored generator continues the exact stream the captured
        /// one would have produced.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_give_distinct_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f32 = rng.random_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&x));
            let y: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
            assert!(y > 0.0 && y < 1.0);
        }
    }

    #[test]
    fn int_ranges_cover_and_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let i: usize = rng.random_range(0usize..7);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let j: usize = rng.random_range(0usize..=3);
            assert!(j <= 3);
        }
    }

    #[test]
    fn state_round_trip_continues_stream() {
        let mut a = StdRng::seed_from_u64(3);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniformity_rough_check() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }
}
