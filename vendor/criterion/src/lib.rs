//! Offline drop-in for the subset of `criterion` this workspace uses.
//!
//! A real statistical harness needs sampling plans, outlier rejection,
//! and HTML reports; this stub keeps the *API* so benches compile and
//! run offline, and reports wall-clock mean/median per iteration (plus
//! element throughput when configured). Good enough to compare the
//! relative cost of two code paths on the same machine, which is all
//! the workspace benches assert.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput declaration for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Conversion into a benchmark label (`BenchmarkId`, `&str`, `String`).
pub trait IntoLabel {
    fn into_label(self) -> String;
}

impl IntoLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoLabel for String {
    fn into_label(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, collecting `sample_size` samples after a warm-up
    /// pass that also calibrates iterations-per-sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up / calibration: find an iteration count that takes
        // roughly 10ms so short routines aren't dominated by timer
        // resolution.
        let mut iters_per_sample = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(10) || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 2;
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters_per_sample as u32);
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares work-per-iteration so results also print as throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoLabel,
        mut routine: R,
    ) -> &mut Self {
        let label = id.into_label();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut bencher);
        self.report(&label, &mut bencher.samples);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoLabel,
        input: &I,
        mut routine: R,
    ) -> &mut Self {
        let label = id.into_label();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut bencher, input);
        self.report(&label, &mut bencher.samples);
        self
    }

    /// Finishes the group (report lines were already printed per bench).
    pub fn finish(self) {}

    fn report(&self, label: &str, samples: &mut [Duration]) {
        if samples.is_empty() {
            println!("{}/{label:<24} (no samples)", self.name);
            return;
        }
        samples.sort_unstable();
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let median = samples[samples.len() / 2];
        let mut line = format!(
            "{}/{label:<24} mean {:>12} median {:>12}",
            self.name,
            format_duration(mean),
            format_duration(median),
        );
        if let Some(throughput) = self.throughput {
            let (count, unit) = match throughput {
                Throughput::Elements(n) => (n, "elem/s"),
                Throughput::Bytes(n) => (n, "B/s"),
            };
            let per_sec = count as f64 / mean.as_secs_f64();
            line.push_str(&format!("  {per_sec:>12.1} {unit}"));
        }
        println!("{line}");
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 10_000 {
        format!("{nanos} ns")
    } else if nanos < 10_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 10_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        let name = name.to_string();
        println!("-- {name} --");
        BenchmarkGroup {
            name,
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, label: &str, routine: R) -> &mut Self {
        self.benchmark_group(label.to_string())
            .bench_function("", routine);
        self
    }
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        group.throughput(Throughput::Elements(4));
        group.bench_function("add", |b| b.iter(|| black_box(2u64) + black_box(3u64)));
        group.bench_with_input(BenchmarkId::from_parameter(7u32), &7u32, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(format_duration(Duration::from_nanos(500)).ends_with("ns"));
        assert!(format_duration(Duration::from_micros(500)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(500)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(500)).ends_with(" s"));
    }
}
