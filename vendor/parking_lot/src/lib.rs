//! Offline drop-in for the subset of `parking_lot` this workspace uses.
//!
//! Wraps the std synchronization primitives with `parking_lot`'s
//! non-poisoning API: `lock()`, `read()` and `write()` return guards
//! directly instead of `Result`s. A poisoned std lock (a thread panicked
//! while holding it) is recovered rather than propagated, matching
//! `parking_lot`'s behavior of not tracking poison at all.

use std::sync::PoisonError;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning interface.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning interface.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn survives_poisoning_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is still usable afterwards.
        *m.lock() = 3;
        assert_eq!(*m.lock(), 3);
    }
}
