//! `#[derive(Serialize, Deserialize)]` for the vendored serde stub.
//!
//! `syn`/`quote` are not available offline, so the item is parsed
//! directly from the `proc_macro` token stream. Supported shapes (all
//! the workspace uses):
//!
//! - non-generic structs: named fields, tuple (incl. newtype), unit
//! - non-generic enums: unit, named-field and tuple variants
//!
//! Generated code follows serde's externally-tagged JSON conventions;
//! see the vendored `serde` crate's docs.

use proc_macro::{Delimiter, Spacing, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    /// `struct S;` or unit enum variant.
    Unit,
    /// Named fields, in declaration order.
    Named(Vec<String>),
    /// Tuple fields; only the arity matters.
    Tuple(usize),
}

#[derive(Debug)]
struct Item {
    name: String,
    kind: ItemKind,
}

#[derive(Debug)]
enum ItemKind {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, generate: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => generate(&item)
            .parse()
            .expect("generated impl should tokenize"),
        Err(message) => format!("compile_error!({message:?});")
            .parse()
            .expect("error should tokenize"),
    }
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attrs_and_vis(&tokens, &mut pos);

    let keyword = match tokens.get(pos) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => return Err(format!("expected struct/enum, found {other:?}")),
    };
    pos += 1;
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    pos += 1;
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "vendored serde derive does not support generic type `{name}`"
        ));
    }

    let kind = match keyword.as_str() {
        "struct" => ItemKind::Struct(parse_struct_body(&tokens, pos)?),
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                ItemKind::Enum(parse_variants(group.stream())?)
            }
            other => return Err(format!("expected enum body, found {other:?}")),
        },
        other => return Err(format!("cannot derive for `{other}` items")),
    };
    Ok(Item { name, kind })
}

fn parse_struct_body(tokens: &[TokenTree], pos: usize) -> Result<Fields, String> {
    match tokens.get(pos) {
        Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
            Ok(Fields::Named(parse_named_fields(group.stream())?))
        }
        Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
            Ok(Fields::Tuple(count_tuple_fields(group.stream())))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Fields::Unit),
        None => Ok(Fields::Unit),
        other => Err(format!("unsupported struct body: {other:?}")),
    }
}

/// Splits a token stream on commas that sit outside `<…>` (group tokens
/// are opaque trees, so only angle brackets need explicit tracking).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut segments = vec![Vec::new()];
    let mut angle_depth = 0usize;
    for token in stream {
        if let TokenTree::Punct(p) = &token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    segments.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        segments.last_mut().expect("non-empty").push(token);
    }
    segments.retain(|segment| !segment.is_empty());
    segments
}

/// Advances past outer attributes (`#[…]`) and visibility (`pub`,
/// `pub(crate)`, …).
fn skip_attrs_and_vis(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 1; // '#'
                if matches!(tokens.get(*pos), Some(TokenTree::Group(_))) {
                    *pos += 1; // '[…]'
                }
            }
            Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                *pos += 1;
                if matches!(
                    tokens.get(*pos),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *pos += 1; // '(crate)' etc.
                }
            }
            _ => return,
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    for segment in split_top_level(stream) {
        let mut pos = 0;
        skip_attrs_and_vis(&segment, &mut pos);
        match (segment.get(pos), segment.get(pos + 1)) {
            (Some(TokenTree::Ident(ident)), Some(TokenTree::Punct(p)))
                if p.as_char() == ':' && p.spacing() == Spacing::Alone =>
            {
                names.push(ident.to_string());
            }
            _ => return Err(format!("unsupported field syntax: {segment:?}")),
        }
    }
    Ok(names)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, Fields)>, String> {
    let mut variants = Vec::new();
    for segment in split_top_level(stream) {
        let mut pos = 0;
        skip_attrs_and_vis(&segment, &mut pos);
        let name = match segment.get(pos) {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        pos += 1;
        let fields = match segment.get(pos) {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(group.stream())?)
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_tuple_fields(group.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err(format!(
                    "explicit discriminants are not supported (variant `{name}`)"
                ))
            }
            None => Fields::Unit,
            other => return Err(format!("unsupported variant body: {other:?}")),
        };
        variants.push((name, fields));
    }
    Ok(variants)
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

/// `Value::Map(vec![(key, expr), …])` from rendered entry pairs.
fn map_expr(entries: &[(String, String)]) -> String {
    let body: Vec<String> = entries
        .iter()
        .map(|(key, expr)| format!("(::std::string::String::from({key:?}), {expr})"))
        .collect();
    format!("::serde::Value::Map(vec![{}])", body.join(", "))
}

fn seq_expr(items: &[String]) -> String {
    format!("::serde::Value::Seq(vec![{}])", items.join(", "))
}

fn to_value(expr: &str) -> String {
    format!("::serde::Serialize::to_value({expr})")
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Fields::Unit) => "::serde::Value::Null".to_owned(),
        ItemKind::Struct(Fields::Named(fields)) => {
            let entries: Vec<(String, String)> = fields
                .iter()
                .map(|f| (f.clone(), to_value(&format!("&self.{f}"))))
                .collect();
            map_expr(&entries)
        }
        ItemKind::Struct(Fields::Tuple(1)) => to_value("&self.0"),
        ItemKind::Struct(Fields::Tuple(arity)) => {
            let items: Vec<String> = (0..*arity)
                .map(|i| to_value(&format!("&self.{i}")))
                .collect();
            seq_expr(&items)
        }
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(variant, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{variant} => ::serde::Value::Str(::std::string::String::from({variant:?})),"
                    ),
                    Fields::Named(fields) => {
                        let bindings = fields.join(", ");
                        let inner: Vec<(String, String)> =
                            fields.iter().map(|f| (f.clone(), to_value(f))).collect();
                        let payload = map_expr(&inner);
                        let tagged = map_expr(&[(variant.clone(), payload)]);
                        format!("{name}::{variant} {{ {bindings} }} => {tagged},")
                    }
                    Fields::Tuple(arity) => {
                        let bindings: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                        let payload = if *arity == 1 {
                            to_value("f0")
                        } else {
                            seq_expr(&bindings.iter().map(|b| to_value(b)).collect::<Vec<_>>())
                        };
                        let tagged = map_expr(&[(variant.clone(), payload)]);
                        format!("{name}::{variant}({}) => {tagged},", bindings.join(", "))
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

/// Expression deserializing a named-field set from map value `src` into
/// constructor `ctor` (e.g. `Foo` or `Foo::Bar`).
fn named_ctor(ctor: &str, owner: &str, fields: &[String], src: &str) -> String {
    let assignments: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value({src}.get({f:?}).ok_or_else(|| \
                 ::serde::Error::custom(concat!(\"missing field `\", {f:?}, \"` in {owner}\")))?)?"
            )
        })
        .collect();
    format!("{ctor} {{ {} }}", assignments.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Fields::Unit) => format!("Ok({name})"),
        ItemKind::Struct(Fields::Named(fields)) => {
            format!("Ok({})", named_ctor(name, name, fields, "value"))
        }
        ItemKind::Struct(Fields::Tuple(1)) => {
            format!("Ok({name}(::serde::Deserialize::from_value(value)?))")
        }
        ItemKind::Struct(Fields::Tuple(arity)) => {
            let elems: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = value.as_seq().ok_or_else(|| \
                 ::serde::Error::custom(\"expected sequence for {name}\"))?;\n\
                 if items.len() != {arity} {{\n\
                     return Err(::serde::Error::custom(\"wrong tuple arity for {name}\"));\n\
                 }}\n\
                 Ok({name}({}))",
                elems.join(", ")
            )
        }
        ItemKind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, fields)| matches!(fields, Fields::Unit))
                .map(|(variant, _)| format!("{variant:?} => return Ok({name}::{variant}),"))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|(variant, fields)| match fields {
                    Fields::Unit => None,
                    Fields::Named(fields) => Some(format!(
                        "{variant:?} => return Ok({}),",
                        named_ctor(&format!("{name}::{variant}"), name, fields, "payload")
                    )),
                    Fields::Tuple(1) => Some(format!(
                        "{variant:?} => return Ok({name}::{variant}(\
                         ::serde::Deserialize::from_value(payload)?)),"
                    )),
                    Fields::Tuple(arity) => {
                        let elems: Vec<String> = (0..*arity)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        Some(format!(
                            "{variant:?} => {{\n\
                                 let items = payload.as_seq().ok_or_else(|| \
                                 ::serde::Error::custom(\"expected sequence for {name}::{variant}\"))?;\n\
                                 if items.len() != {arity} {{\n\
                                     return Err(::serde::Error::custom(\
                                     \"wrong arity for {name}::{variant}\"));\n\
                                 }}\n\
                                 return Ok({name}::{variant}({}));\n\
                             }}",
                            elems.join(", ")
                        ))
                    }
                })
                .collect();
            format!(
                "if let Some(tag) = value.as_str() {{\n\
                     match tag {{ {} _ => {{}} }}\n\
                 }}\n\
                 if let Some(entries) = value.as_map() {{\n\
                     if entries.len() == 1 {{\n\
                         let (tag, payload) = &entries[0];\n\
                         let _ = payload;\n\
                         match tag.as_str() {{ {} _ => {{}} }}\n\
                     }}\n\
                 }}\n\
                 Err(::serde::Error::custom(\"no matching variant of {name}\"))",
                unit_arms.join(" "),
                tagged_arms.join(" ")
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
