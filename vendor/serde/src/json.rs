//! JSON reading and writing for [`Value`] trees (the `serde_json` role).

use crate::{Deserialize, Error, Serialize, Value};

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    out
}

/// Serializes `value` to an indented (2-space) JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    out
}

/// Parses a JSON string into a `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let value = parse(input)?;
    T::from_value(&value)
}

/// Parses a JSON string into a raw [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or trailing input.
pub fn parse(input: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

fn write_value(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(v) => out.push_str(&v.to_string()),
        Value::UInt(v) => out.push_str(&v.to_string()),
        Value::Float(v) => {
            if v.is_finite() {
                // Display for floats is the shortest round-tripping
                // decimal, but bare integers need a marker to re-parse
                // as floats.
                let s = v.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // JSON has no NaN/inf; null is the conventional fallback.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected '{}' at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(Error::custom(format!(
                "unexpected character '{}' at byte {}",
                other as char, self.pos
            ))),
            None => Err(Error::custom("unexpected end of input")),
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while self.peek().is_some_and(|b| b != b'"' && b != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::custom("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !text.contains(['.', 'e', 'E']) {
            if let Some(stripped) = text.strip_prefix('-') {
                if stripped.parse::<u64>().is_ok() || text.parse::<i64>().is_ok() {
                    return text
                        .parse::<i64>()
                        .map(Value::Int)
                        .map_err(|_| Error::custom(format!("number {text} out of range")));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_compound() {
        let value = Value::Map(vec![
            ("name".into(), Value::Str("fademl".into())),
            ("count".into(), Value::UInt(3)),
            ("ratio".into(), Value::Float(0.5)),
            ("neg".into(), Value::Int(-7)),
            (
                "tags".into(),
                Value::Seq(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        let text = to_string(&Probe(value.clone()));
        assert_eq!(parse(&text).unwrap(), value);
    }

    struct Probe(Value);
    impl Serialize for Probe {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    #[test]
    fn escapes_round_trip() {
        let original = Value::Str("a\"b\\c\nd\te\u{1}".into());
        let text = to_string(&Probe(original.clone()));
        assert_eq!(parse(&text).unwrap(), original);
    }

    #[test]
    fn floats_reparse_as_floats() {
        let text = to_string(&Probe(Value::Float(2.0)));
        assert_eq!(text, "2.0");
        assert_eq!(parse(&text).unwrap(), Value::Float(2.0));
    }

    #[test]
    fn pretty_output_is_indented_and_parses() {
        let value = Value::Map(vec![("xs".into(), Value::Seq(vec![Value::UInt(1)]))]);
        let text = to_string_pretty(&Probe(value.clone()));
        assert!(text.contains("\n  "));
        assert_eq!(parse(&text).unwrap(), value);
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"open").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("nul").is_err());
    }
}
