//! The self-describing value tree that serialization flows through.

/// A JSON-shaped dynamic value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (negative numbers parse to this).
    Int(i64),
    /// Unsigned integer (non-negative numbers parse to this).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object; insertion order is preserved.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Short type name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::UInt(_) => "uint",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }

    /// Numeric view as `u64`, coercing from the other numeric variants
    /// when lossless.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(v) => Some(*v),
            Value::Int(v) => u64::try_from(*v).ok(),
            Value::Float(v) if v.fract() == 0.0 && *v >= 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// Numeric view as `i64`, coercing when lossless.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::UInt(v) => i64::try_from(*v).ok(),
            Value::Float(v)
                if v.fract() == 0.0 && *v >= i64::MIN as f64 && *v <= i64::MAX as f64 =>
            {
                Some(*v as i64)
            }
            _ => None,
        }
    }

    /// Numeric view as `f64`, coercing from the integer variants.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            Value::UInt(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Object view.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|entries| entries.iter().find(|(k, _)| k == key))
            .map(|(_, v)| v)
    }
}
