//! Offline drop-in for the subset of `serde` this workspace uses.
//!
//! Instead of serde's visitor architecture, this crate serializes
//! through a small self-describing [`Value`] tree with a JSON reader and
//! writer ([`json`]). `#[derive(Serialize, Deserialize)]` (re-exported
//! from the sibling `serde_derive` crate) generates `Value` conversions
//! for non-generic structs and enums following serde's JSON conventions:
//!
//! - named-field struct → JSON object
//! - newtype struct → the inner value
//! - tuple struct → JSON array
//! - unit enum variant → `"VariantName"`
//! - data-carrying variant → `{"VariantName": …}` (externally tagged)

pub use serde_derive::{Deserialize, Serialize};

pub mod json;
mod value;

pub use value::Value;

use std::fmt;

/// Error produced by deserialization ([`Deserialize::from_value`] or
/// [`json::from_str`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Represents `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the tree's shape or types don't match.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value.as_u64().ok_or_else(|| {
                    Error::custom(format!(
                        "expected unsigned integer, got {}", value.kind()
                    ))
                })?;
                <$t>::try_from(raw).map_err(|_| {
                    Error::custom(format!(
                        "{raw} out of range for {}", stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value.as_i64().ok_or_else(|| {
                    Error::custom(format!(
                        "expected integer, got {}", value.kind()
                    ))
                })?;
                <$t>::try_from(raw).map_err(|_| {
                    Error::custom(format!(
                        "{raw} out of range for {}", stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .map(|v| v as f32)
            .ok_or_else(|| Error::custom(format!("expected number, got {}", value.kind())))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, got {}", value.kind())))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

/// Mirrors real serde's behaviour for `&'static str` fields: the
/// derive compiles, but deserializing errors at runtime because a
/// value tree owns its strings and cannot lend out a `'static` borrow.
impl Deserialize for &'static str {
    fn from_value(_value: &Value) -> Result<Self, Error> {
        Err(Error::custom(
            "cannot deserialize into borrowed &'static str; use String",
        ))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!(
                "expected sequence, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error::custom(format!(
                "expected 2-element sequence, got {}",
                other.kind()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-9i64).to_value()).unwrap(), -9);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_value()).unwrap(),
            "hi".to_owned()
        );
        assert_eq!(
            Vec::<u8>::from_value(&vec![1u8, 2, 3].to_value()).unwrap(),
            vec![1, 2, 3]
        );
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn numeric_coercions() {
        // A JSON parser can't distinguish 3 from 3.0's intent; lenient
        // cross-coercion keeps round trips practical.
        assert_eq!(f64::from_value(&Value::UInt(3)).unwrap(), 3.0);
        assert_eq!(u32::from_value(&Value::Int(7)).unwrap(), 7);
        assert!(u32::from_value(&Value::Int(-7)).is_err());
    }
}
